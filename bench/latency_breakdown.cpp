// Latency attribution ("where does simulated time go"): decomposes the
// end-to-end latency of local and global transactions into the lifecycle
// stages recorded by src/trace/ — client->server submit, atomic broadcast
// (Paxos), replica CPU queue wait, charged certification/apply work,
// P-DUR home-core execution, vote exchange + reorder-threshold wait, and
// the reply back to the client. This is the paper's evaluation lens
// (Figures 2-7 explain S-DUR by exactly this decomposition); the P-DUR
// section adds per-lane visibility for the multi-core replica model
// (arXiv:1312.0742).
//
// The stages telescope between consecutive trace marks, so the sum of
// stage means must equal the mean end-to-end latency over the attributed
// chains (within floating-point rounding; the acceptance bar is 5%). The
// bench checks that bound itself and fails loudly when it breaks.
//
// Flags:
//   --smoke            reduced sweep + hard exit code on a broken bound
//                      (used by the latency_breakdown_smoke ctest entry)
//   --trace-json=PATH  additionally export the first sweep's raw trace as
//                      Chrome trace-event JSON (Perfetto-loadable)
#include <cstring>
#include <string>
#include <string_view>

#include "common.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

/// Runs one traced configuration and returns the attribution. The tracer
/// is armed before the deployment is built (track registration happens in
/// the Server/Client/PaxosEngine constructors) and disarmed right after.
trace::Breakdown run_traced(const MicroSetup& setup, std::uint32_t clients,
                            std::size_t ring_capacity, const std::string& chrome_path) {
  auto& tracer = trace::Tracer::instance();
  tracer.reset();
  tracer.set_ring_capacity(ring_capacity);
  tracer.set_enabled(true);
  const RunResult r = run_micro(setup, clients);
  (void)r;
  tracer.set_enabled(false);
  if (!chrome_path.empty()) {
    if (trace::write_chrome_trace(tracer, chrome_path)) {
      std::printf("  (chrome trace: %s, %llu records, %llu dropped)\n", chrome_path.c_str(),
                  static_cast<unsigned long long>(tracer.records_appended()),
                  static_cast<unsigned long long>(tracer.records_dropped()));
    } else {
      std::fprintf(stderr, "latency_breakdown: cannot write %s\n", chrome_path.c_str());
    }
  }
  trace::Breakdown b = trace::build_breakdown(tracer);
  tracer.reset();  // free the ring before the next sweep
  return b;
}

/// Prints and reports one class's stage table; returns false if the
/// telescoping bound (sum of stage means within 5% of the e2e mean) is
/// violated for a class that attributed any chains.
bool emit_class(BenchReport& rep, const std::string& label, const std::string& cls,
                const trace::Breakdown::Class& c) {
  if (c.chains == 0) return true;
  std::printf("  %-8s (%llu chains): e2e mean %8.1f ms  p50 %8.1f  p99 %8.1f ms\n", cls.c_str(),
              static_cast<unsigned long long>(c.chains), c.e2e.mean() / 1000.0,
              static_cast<double>(c.e2e.percentile(50)) / 1000.0,
              static_cast<double>(c.e2e.percentile(99)) / 1000.0);
  for (std::size_t s = 0; s < trace::Breakdown::kStages; ++s) {
    const util::Histogram& h = c.stage[s];
    const double share = c.e2e.mean() > 0 ? 100.0 * h.mean() / c.e2e.mean() : 0;
    std::printf("    %-12s mean %8.1f ms (%5.1f%%)  p50 %8.1f  p99 %8.1f ms\n",
                trace::Breakdown::stage_name(s), h.mean() / 1000.0, share,
                static_cast<double>(h.percentile(50)) / 1000.0,
                static_cast<double>(h.percentile(99)) / 1000.0);
    rep.row()
        .str("label", label)
        .str("class", cls)
        .str("stage", trace::Breakdown::stage_name(s))
        .num("mean_ms", h.mean() / 1000.0)
        .num("p50_ms", static_cast<double>(h.percentile(50)) / 1000.0)
        .num("p99_ms", static_cast<double>(h.percentile(99)) / 1000.0)
        .num("share_pct", share);
  }
  const double sum = c.sum_of_stage_means();
  const double e2e = c.e2e.mean();
  const double rel = e2e > 0 ? std::abs(sum - e2e) / e2e : 0;
  rep.row()
      .str("label", label)
      .str("class", cls)
      .str("stage", "e2e")
      .num("chains", static_cast<double>(c.chains))
      .num("mean_ms", e2e / 1000.0)
      .num("p50_ms", static_cast<double>(c.e2e.percentile(50)) / 1000.0)
      .num("p99_ms", static_cast<double>(c.e2e.percentile(99)) / 1000.0)
      .num("sum_of_stage_means_ms", sum / 1000.0)
      .num("stage_sum_rel_error", rel);
  if (rel > 0.05) {
    std::fprintf(stderr,
                 "latency_breakdown: %s/%s stage means sum to %.1f us but e2e mean is %.1f us "
                 "(rel error %.3f > 0.05)\n",
                 label.c_str(), cls.c_str(), sum, e2e, rel);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
#if !SDUR_TRACE
  (void)argc;
  (void)argv;
  std::printf(
      "latency_breakdown: built with SDUR_TRACE=0 — instrumentation compiled "
      "out, nothing to attribute\n");
  return 0;
#else
  bool smoke = false;
  std::string chrome_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") smoke = true;
    if (arg.rfind("--trace-json=", 0) == 0) chrome_path = std::string(arg.substr(13));
  }
  auto& rep = report_open("trace_breakdown");
  print_header("Latency attribution — per-stage breakdown (WAN1)");

  const std::size_t ring = smoke ? (1u << 18) : (1u << 20);
  bool ok = true;
  bool any_chains = false;

  const std::vector<PartitionId> partition_counts =
      smoke ? std::vector<PartitionId>{1, 2} : std::vector<PartitionId>{1, 2, 4};
  for (PartitionId parts : partition_counts) {
    MicroSetup setup;
    setup.kind = DeploymentSpec::Kind::kWan1;
    setup.partitions = parts;
    setup.global_fraction = parts > 1 ? 0.2 : 0.0;
    setup.items_per_partition = 20'000;
    const std::uint32_t clients = smoke ? 16 : 48;
    const std::string label = std::to_string(parts) + "p";
    std::printf("\n%u partition(s), %u clients, %.0f%% global:\n", parts, clients,
                setup.global_fraction * 100);
    // The chrome export (if requested) captures the most interesting
    // sweep: the largest partition count, where globals exercise the
    // vote-exchange path.
    const bool last = parts == partition_counts.back();
    const trace::Breakdown b = run_traced(setup, clients, ring, last ? chrome_path : "");
    ok = emit_class(rep, label, "local", b.local) && ok;
    ok = emit_class(rep, label, "global", b.global) && ok;
    any_chains = any_chains || b.local.chains > 0 || b.global.chains > 0;
    std::printf("  (aborted %llu, incomplete %llu chains)\n",
                static_cast<unsigned long long>(b.aborted_chains),
                static_cast<unsigned long long>(b.incomplete_chains));
  }

  // P-DUR section: multi-core replica, where lane_exec (home-core work
  // deferred behind the dispatch) becomes a real stage.
  {
    MicroSetup setup;
    setup.kind = DeploymentSpec::Kind::kLan;
    setup.partitions = 1;
    setup.global_fraction = 0.0;
    setup.items_per_partition = 20'000;
    setup.pdur_cores = 4;
    setup.cross_core_fraction = 0.2;
    const std::uint32_t clients = smoke ? 24 : 64;
    std::printf("\nP-DUR, 4 cores, %u clients, 20%% cross-core (LAN):\n", clients);
    const trace::Breakdown b = run_traced(setup, clients, ring, "");
    ok = emit_class(rep, "pdur-4c", "local", b.local) && ok;
    any_chains = any_chains || b.local.chains > 0;
    std::printf("  (aborted %llu, incomplete %llu chains)\n",
                static_cast<unsigned long long>(b.aborted_chains),
                static_cast<unsigned long long>(b.incomplete_chains));
  }

  // Multi-partition P-DUR (arXiv:1312.0742 Section V): every replica runs
  // 4 cores and globals cross partitions, so a chain can pay lane_exec
  // AND commit_wait — the decomposition shows how the two compose.
  const std::vector<PartitionId> pdur_partition_counts =
      smoke ? std::vector<PartitionId>{2} : std::vector<PartitionId>{2, 4};
  for (PartitionId parts : pdur_partition_counts) {
    MicroSetup setup;
    setup.kind = DeploymentSpec::Kind::kWan1;
    setup.partitions = parts;
    setup.global_fraction = 0.2;
    setup.items_per_partition = 20'000;
    setup.pdur_cores = 4;
    setup.cross_core_fraction = 0.2;
    const std::uint32_t clients = (smoke ? 16 : 48) * parts / 2;
    const std::string label = "pdur-4c-" + std::to_string(parts) + "p";
    std::printf("\nP-DUR, 4 cores, %u partitions, %u clients, 20%% global (WAN1):\n", parts,
                clients);
    const trace::Breakdown b = run_traced(setup, clients, ring, "");
    ok = emit_class(rep, label, "local", b.local) && ok;
    ok = emit_class(rep, label, "global", b.global) && ok;
    any_chains = any_chains || b.local.chains > 0 || b.global.chains > 0;
    std::printf("  (aborted %llu, incomplete %llu chains)\n",
                static_cast<unsigned long long>(b.aborted_chains),
                static_cast<unsigned long long>(b.incomplete_chains));
  }

  if (!any_chains) {
    std::fprintf(stderr, "latency_breakdown: no complete chains attributed\n");
    return 1;
  }
  return ok ? 0 : 1;
#endif  // SDUR_TRACE
}
