// Bank-transfer example: serializable multi-partition transactions.
//
// Accounts are range-partitioned across three partitions. Concurrent
// clients transfer money between random accounts (many transfers cross
// partitions, i.e. are global transactions). Serializability guarantees
// that money is conserved: at the end, the sum over all accounts must
// equal the initial total, and every individual transfer either fully
// happened or did not happen at all.
//
//   $ ./examples/bank_transfer
#include <cstdio>
#include <cstring>

#include "sdur/deployment.h"
#include "sdur/partitioning.h"
#include "util/rng.h"

using namespace sdur;

namespace {

constexpr PartitionId kPartitions = 3;
constexpr Key kAccountsPerPartition = 100;
constexpr std::int64_t kInitialBalance = 1'000;

std::string encode_balance(std::int64_t v) {
  std::string s(sizeof(v), '\0');
  std::memcpy(s.data(), &v, sizeof(v));
  return s;
}

std::int64_t decode_balance(const std::string& s) {
  std::int64_t v = 0;
  if (s.size() >= sizeof(v)) std::memcpy(&v, s.data(), sizeof(v));
  return v;
}

/// One closed-loop client transferring money between random accounts.
class Transfers {
 public:
  Transfers(Deployment& dep, Client& client, std::uint64_t seed)
      : dep_(dep), client_(client), rng_(seed) {}

  void start(int transfers) {
    remaining_ = transfers;
    next();
  }

  int committed = 0;
  int aborted = 0;

 private:
  void next() {
    if (remaining_-- <= 0) return;
    const Key total_accounts = kPartitions * kAccountsPerPartition;
    const Key from = rng_.below(total_accounts);
    Key to;
    do {
      to = rng_.below(total_accounts);
    } while (to == from);
    const auto amount = static_cast<std::int64_t>(1 + rng_.below(50));

    client_.begin();
    client_.read_many({from, to}, [this, from, to, amount](auto values) {
      const std::int64_t from_balance = values[0] ? decode_balance(*values[0]) : 0;
      const std::int64_t to_balance = values[1] ? decode_balance(*values[1]) : 0;
      if (from_balance < amount) {  // insufficient funds: give up, try another
        next();
        return;
      }
      client_.write(from, encode_balance(from_balance - amount));
      client_.write(to, encode_balance(to_balance + amount));
      client_.commit([this](Outcome o) {
        // On certification abort the transfer simply did not happen; a real
        // application would re-read and retry. Either way no money moves
        // partially.
        (o == Outcome::kCommit ? committed : aborted)++;
        next();
      });
    });
  }

  Deployment& dep_;
  Client& client_;
  util::Rng rng_;
  int remaining_ = 0;
};

}  // namespace

int main() {
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = kPartitions;
  spec.partitioning = std::make_shared<RangePartitioning>(kPartitions, kAccountsPerPartition);
  spec.log_write_latency = sim::usec(500);
  Deployment dep(spec);

  const Key total_accounts = kPartitions * kAccountsPerPartition;
  for (Key a = 0; a < total_accounts; ++a) dep.load(a, encode_balance(kInitialBalance));
  dep.start();

  // Eight concurrent clients, 150 transfers each.
  std::vector<std::unique_ptr<Transfers>> sessions;
  for (int i = 0; i < 8; ++i) {
    Client& c = dep.add_client(static_cast<PartitionId>(i % kPartitions));
    sessions.push_back(std::make_unique<Transfers>(dep, c, 100 + i));
  }
  dep.simulator().schedule_at(sim::msec(300), [&] {
    for (auto& s : sessions) s->start(150);
  });
  dep.run_until(sim::sec(120));

  int committed = 0, aborted = 0;
  for (auto& s : sessions) {
    committed += s->committed;
    aborted += s->aborted;
  }
  std::printf("transfers: %d committed, %d aborted (certification conflicts)\n", committed,
              aborted);

  // Audit every partition on every replica: total money must be conserved.
  bool ok = true;
  for (std::uint32_t r = 0; r < 3; ++r) {
    std::int64_t total = 0;
    for (Key a = 0; a < total_accounts; ++a) {
      const PartitionId p = dep.partitioning()->partition_of(a);
      auto v = dep.server(p, r).store().get_latest(a);
      total += v ? decode_balance(v->value) : 0;
    }
    const std::int64_t expected = static_cast<std::int64_t>(total_accounts) * kInitialBalance;
    std::printf("replica %u audit: total=%lld expected=%lld %s\n", r,
                static_cast<long long>(total), static_cast<long long>(expected),
                total == expected ? "OK" : "*** MONEY NOT CONSERVED ***");
    ok = ok && total == expected;
  }
  return ok ? 0 : 1;
}
