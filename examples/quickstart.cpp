// Quickstart: bring up a 2-partition SDUR deployment, run a local update
// transaction, a global update transaction and a global read-only
// transaction, and print what happened.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "sdur/deployment.h"
#include "sdur/partitioning.h"

using namespace sdur;

int main() {
  // 2 partitions x 3 replicas in one region ("LAN"); keys 0..999 live in
  // partition 0, keys 1000..1999 in partition 1.
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = 2;
  spec.replicas = 3;
  spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);

  Deployment dep(spec);
  dep.load(1, "one");
  dep.load(2, "two");
  dep.load(1001, "thousand-one");
  dep.start();

  Client& client = dep.add_client(/*home=*/0);

  // Give Paxos a moment to elect leaders, then run the demo transactions.
  dep.simulator().schedule_at(sim::msec(200), [&] {
    // --- 1. Local transaction: read keys 1 and 2, bump both. -------------
    client.begin();
    client.read_many({1, 2}, [&](auto values) {
      std::printf("read key 1 -> '%s', key 2 -> '%s'\n",
                  values[0] ? values[0]->c_str() : "<none>",
                  values[1] ? values[1]->c_str() : "<none>");
      client.write(1, "one'");
      client.write(2, "two'");
      client.commit([&](Outcome o) {
        std::printf("[%6.1f ms] local transaction: %s\n", sim::to_ms(client.now()), to_string(o));

        // --- 2. Global transaction across both partitions. --------------
        client.begin();
        client.read_many({1, 1001}, [&](auto vals) {
          (void)vals;
          client.write(1, "one''");
          client.write(1001, "thousand-one'");
          client.commit([&](Outcome o2) {
            std::printf("[%6.1f ms] global transaction: %s\n", sim::to_ms(client.now()),
                        to_string(o2));

            // --- 3. Read-only transaction over a global snapshot. -------
            client.begin_read_only([&] {
              client.read_many({1, 1001}, [&](auto ro) {
                std::printf("[%6.1f ms] read-only snapshot: key 1 -> '%s', key 1001 -> '%s'\n",
                            sim::to_ms(client.now()), ro[0] ? ro[0]->c_str() : "<none>",
                            ro[1] ? ro[1]->c_str() : "<none>");
                client.commit([&](Outcome o3) {
                  std::printf("[%6.1f ms] read-only transaction: %s (never aborts)\n",
                              sim::to_ms(client.now()), to_string(o3));
                  dep.simulator().stop();
                });
              });
            });
          });
        });
      });
    });
  });

  dep.simulator().run();

  const Server::Stats total = dep.total_stats();
  std::printf("\nservers: %llu deliveries, %llu local + %llu global commits, %llu aborts\n",
              (unsigned long long)total.delivered, (unsigned long long)total.committed_local,
              (unsigned long long)total.committed_global, (unsigned long long)total.aborted);
  return 0;
}
