// Geo-deployment example: compares the WAN 1 and WAN 2 deployments from
// the paper (Section IV-B) with the same pair of transactions, and shows
// the effect of the reordering technique on a local transaction stuck
// behind a global one (the convoy the paper studies).
//
//   $ ./examples/geo_deployment
#include <cstdio>

#include "sdur/deployment.h"
#include "sdur/partitioning.h"

using namespace sdur;

namespace {

struct Timings {
  double local_ms = 0;
  double global_ms = 0;
  double convoyed_local_ms = 0;  // local committed right after a global
};

Timings measure(DeploymentSpec::Kind kind, std::uint32_t reorder_threshold) {
  DeploymentSpec spec;
  spec.kind = kind;
  spec.partitions = 2;
  spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
  spec.server.reorder_threshold = reorder_threshold;
  spec.jitter = 0.0;
  Deployment dep(spec);
  for (Key k = 0; k < 10; ++k) dep.load(k, "a");
  for (Key k = 1000; k < 1010; ++k) dep.load(k, "b");
  dep.start();

  Client& c1 = dep.add_client(0);
  Client& c2 = dep.add_client(0);
  dep.run_until(sim::msec(1500));
  auto run = [&](sim::Time t) { dep.run_until(dep.simulator().now() + t); };

  Timings t;

  // Plain local transaction.
  {
    c1.begin();
    const sim::Time begin = c1.now();
    c1.read_many({1, 2}, [&](auto) {
      c1.write(1, "x");
      c1.write(2, "x");
      c1.commit([&, begin](Outcome) { t.local_ms = sim::to_ms(c1.now() - begin); });
    });
    run(sim::sec(5));
  }

  // Global transaction, with a local one submitted right behind it: the
  // local is delivered after the global and (in the baseline) must wait
  // for the global's cross-region votes before it can commit.
  {
    c1.begin();
    const sim::Time gbegin = c1.now();
    c1.read_many({3, 1003}, [&](auto) {
      c1.write(3, "y");
      c1.write(1003, "y");
      c1.commit([&, gbegin](Outcome) { t.global_ms = sim::to_ms(c1.now() - gbegin); });
      // Submit the local 5 ms after the global went out.
      c2.begin();
      c2.read_many({4, 5}, [&](auto) {
        dep.simulator().schedule_after(sim::msec(5), [&] {
          const sim::Time lbegin = c2.now();
          c2.write(4, "z");
          c2.write(5, "z");
          c2.commit(
              [&, lbegin](Outcome) { t.convoyed_local_ms = sim::to_ms(c2.now() - lbegin); });
        });
      });
    });
    run(sim::sec(5));
  }
  return t;
}

}  // namespace

int main() {
  std::printf("Latencies for the same transactions under each deployment (ms):\n\n");
  std::printf("%-34s %10s %10s %18s\n", "", "local", "global", "local-behind-global");

  const Timings w1 = measure(DeploymentSpec::Kind::kWan1, 0);
  std::printf("%-34s %10.1f %10.1f %18.1f\n", "WAN 1 (baseline)", w1.local_ms, w1.global_ms,
              w1.convoyed_local_ms);

  const Timings w1r = measure(DeploymentSpec::Kind::kWan1, 64);
  std::printf("%-34s %10.1f %10.1f %18.1f\n", "WAN 1 (reordering, R=64)", w1r.local_ms,
              w1r.global_ms, w1r.convoyed_local_ms);

  const Timings w2 = measure(DeploymentSpec::Kind::kWan2, 0);
  std::printf("%-34s %10.1f %10.1f %18.1f\n", "WAN 2 (baseline)", w2.local_ms, w2.global_ms,
              w2.convoyed_local_ms);

  std::printf(
      "\nReading the table:\n"
      " - WAN 1 locals are fast (4 delta) but a local delivered behind a global\n"
      "   inherits its cross-region wait — the convoy the paper measures as a\n"
      "   ~10x local-latency inflation. Reordering lets the local leap the\n"
      "   pending global and commit at nearly its isolated latency.\n"
      " - WAN 2 locals already pay an inter-region quorum (2 delta + 2 Delta),\n"
      "   so a global ahead of them adds much less.\n");
  return 0;
}
