// Social-network example: the paper's Twitter-like application driven
// through the public API (Section VI-A), small enough to read end to end.
//
// Two geo-partitions of users (partition = user % 2). Alice (EU) follows
// Bob (US-EAST) — a global transaction — Bob posts, and Alice reads her
// timeline through a globally consistent read-only snapshot.
//
//   $ ./examples/social_network
#include <cstdio>

#include "sdur/deployment.h"
#include "workload/social.h"

using namespace sdur;
using namespace sdur::workload;

int main() {
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kWan1;
  spec.partitions = 2;
  spec.partitioning = SocialWorkload::make_partitioning(2);
  Deployment dep(spec);

  const std::uint64_t alice = 0;  // partition 0 (EU home)
  const std::uint64_t bob = 1;    // partition 1 (US-EAST home)
  for (std::uint64_t u : {alice, bob}) {
    dep.load(social_key(u, kProducers), encode_id_list({}));
    dep.load(social_key(u, kConsumers), encode_id_list({}));
    dep.load(social_key(u, kPosts), encode_post_list({}));
  }
  dep.start();

  Client& c = dep.add_client(0);  // an EU client
  auto run = [&](sim::Time t) { dep.run_until(dep.simulator().now() + t); };
  run(sim::msec(1500));  // leader election

  // 1. Alice follows Bob: updates producers(alice) @ P0 and
  //    consumers(bob) @ P1 — a global transaction.
  c.begin();
  const sim::Time follow_begin = c.now();
  c.read_many({social_key(alice, kProducers), social_key(bob, kConsumers)}, [&](auto values) {
    auto prod = values[0] ? decode_id_list(*values[0]) : std::vector<std::uint64_t>{};
    auto cons = values[1] ? decode_id_list(*values[1]) : std::vector<std::uint64_t>{};
    prod.push_back(bob);
    cons.push_back(alice);
    c.write(social_key(alice, kProducers), encode_id_list(prod));
    c.write(social_key(bob, kConsumers), encode_id_list(cons));
    c.commit([&](Outcome o) {
      std::printf("[%7.1f ms] follow(alice -> bob): %s (global, %.1f ms)\n",
                  sim::to_ms(c.now()), to_string(o), sim::to_ms(c.now() - follow_begin));
    });
  });
  run(sim::sec(3));

  // 2. Bob posts. His records live in partition 1, so for an EU client
  //    this is a single-partition (local-to-P1) transaction.
  c.begin();
  const sim::Time post_begin = c.now();
  c.read(social_key(bob, kPosts), [&](bool, const std::string& v) {
    auto posts = v.empty() ? std::vector<std::string>{} : decode_post_list(v);
    posts.push_back("hello from bob!");
    c.write(social_key(bob, kPosts), encode_post_list(posts));
    c.commit([&](Outcome o) {
      std::printf("[%7.1f ms] post(bob): %s (%.1f ms)\n", sim::to_ms(c.now()), to_string(o),
                  sim::to_ms(c.now() - post_begin));
    });
  });
  run(sim::sec(3));

  // 3. Alice's timeline: a global read-only transaction against an
  //    asynchronously built consistent snapshot — never aborts.
  run(sim::msec(100));  // let snapshot gossip catch up
  const sim::Time tl_begin = dep.simulator().now();
  c.begin_read_only([&] {
    c.read(social_key(alice, kProducers), [&](bool, const std::string& v) {
      const auto follows = decode_id_list(v);
      std::vector<Key> keys;
      for (std::uint64_t u : follows) keys.push_back(social_key(u, kPosts));
      c.read_many(keys, [&, follows](auto values) {
        std::printf("[%7.1f ms] timeline(alice) over snapshot (%.1f ms):\n",
                    sim::to_ms(c.now()), sim::to_ms(c.now() - tl_begin));
        for (std::size_t i = 0; i < follows.size(); ++i) {
          const auto posts = values[i] ? decode_post_list(*values[i]) : std::vector<std::string>{};
          for (const auto& post : posts) {
            std::printf("             @user%llu: %s\n",
                        static_cast<unsigned long long>(follows[i]), post.c_str());
          }
        }
        c.commit([&](Outcome o) {
          std::printf("[%7.1f ms] timeline read-only commit: %s\n", sim::to_ms(c.now()),
                      to_string(o));
          dep.simulator().stop();
        });
      });
    });
  });
  dep.simulator().run();
  return 0;
}
